#include "src/sched/sync_schedulers.hpp"

#include "src/core/rng.hpp"

namespace lumi {

namespace {
Action pick_action(std::mt19937& rng, bool randomize, const std::vector<Action>& actions) {
  if (!randomize || actions.size() == 1) return actions.front();
  return actions[bounded_draw(rng, static_cast<std::uint32_t>(actions.size()))];
}
}  // namespace

FsyncScheduler::FsyncScheduler(unsigned seed, bool randomize_choice)
    : rng_(seed), randomize_choice_(randomize_choice) {}

std::vector<RobotAction> FsyncScheduler::select(
    const Configuration&, const std::vector<std::vector<Action>>& enabled) {
  std::vector<RobotAction> out;
  for (std::size_t i = 0; i < enabled.size(); ++i) {
    if (enabled[i].empty()) continue;
    out.push_back(RobotAction{static_cast<int>(i),
                              pick_action(rng_, randomize_choice_, enabled[i])});
  }
  return out;
}

SsyncRandomScheduler::SsyncRandomScheduler(unsigned seed) : rng_(seed) {}

std::vector<RobotAction> SsyncRandomScheduler::select(
    const Configuration&, const std::vector<std::vector<Action>>& enabled) {
  std::vector<int> candidates;
  for (std::size_t i = 0; i < enabled.size(); ++i) {
    if (!enabled[i].empty()) candidates.push_back(static_cast<int>(i));
  }
  std::vector<RobotAction> out;
  while (out.empty()) {  // resample until the subset is nonempty
    for (int robot : candidates) {
      if (bounded_draw(rng_, 2) == 1) {
        out.push_back(RobotAction{
            robot, pick_action(rng_, true, enabled[static_cast<std::size_t>(robot)])});
      }
    }
  }
  return out;
}

std::vector<RobotAction> SsyncRoundRobinScheduler::select(
    const Configuration&, const std::vector<std::vector<Action>>& enabled) {
  const int n = static_cast<int>(enabled.size());
  for (int step = 0; step < n; ++step) {
    const int robot = (next_ + step) % n;
    if (!enabled[static_cast<std::size_t>(robot)].empty()) {
      next_ = (robot + 1) % n;
      return {RobotAction{robot, enabled[static_cast<std::size_t>(robot)].front()}};
    }
  }
  return {};  // unreachable: caller guarantees someone is enabled
}

}  // namespace lumi
