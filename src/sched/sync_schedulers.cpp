#include "src/sched/sync_schedulers.hpp"

#include "src/core/rng.hpp"

namespace lumi {

namespace {
Action pick_action(rng::Engine& rng, bool randomize, const std::vector<Action>& actions) {
  if (!randomize || actions.size() == 1) return actions.front();
  return actions[bounded_draw(rng, static_cast<std::uint32_t>(actions.size()))];
}
}  // namespace

FsyncScheduler::FsyncScheduler(unsigned seed, bool randomize_choice)
    : randomize_choice_(randomize_choice) {
  if (randomize_choice) rng_.emplace(seed);
}

std::vector<RobotAction> FsyncScheduler::select(
    const Configuration& config, const std::vector<std::vector<Action>>& enabled) {
  std::vector<RobotAction> out;
  select_into(config, enabled, out);
  return out;
}

void FsyncScheduler::select_into(const Configuration&,
                                 const std::vector<std::vector<Action>>& enabled,
                                 std::vector<RobotAction>& out) {
  out.clear();
  out.reserve(enabled.size());  // no-op once the engine's buffer has warmed up
  for (std::size_t i = 0; i < enabled.size(); ++i) {
    if (enabled[i].empty()) continue;
    out.push_back(RobotAction{static_cast<int>(i),
                              randomize_choice_ ? pick_action(*rng_, true, enabled[i])
                                                : enabled[i].front()});
  }
}

SsyncRandomScheduler::SsyncRandomScheduler(unsigned seed) : rng_(seed) {}

std::vector<RobotAction> SsyncRandomScheduler::select(
    const Configuration& config, const std::vector<std::vector<Action>>& enabled) {
  std::vector<RobotAction> out;
  select_into(config, enabled, out);
  return out;
}

void SsyncRandomScheduler::select_into(const Configuration&,
                                       const std::vector<std::vector<Action>>& enabled,
                                       std::vector<RobotAction>& out) {
  candidates_.clear();
  candidates_.reserve(enabled.size());
  for (std::size_t i = 0; i < enabled.size(); ++i) {
    if (!enabled[i].empty()) candidates_.push_back(static_cast<int>(i));
  }
  out.clear();
  // Terminating instant: nobody is enabled, so there is no nonempty subset
  // to draw.  Return empty without touching the RNG — the draw sequence must
  // match runs recorded before the engines delegated termination detection
  // to the scheduler (the resample loop below would otherwise spin forever).
  if (candidates_.empty()) return;
  out.reserve(candidates_.size());
  while (out.empty()) {  // resample until the subset is nonempty
    for (int robot : candidates_) {
      if (bounded_draw(rng_, 2) == 1) {
        out.push_back(RobotAction{
            robot, pick_action(rng_, true, enabled[static_cast<std::size_t>(robot)])});
      }
    }
  }
}

std::vector<RobotAction> SsyncRoundRobinScheduler::select(
    const Configuration& config, const std::vector<std::vector<Action>>& enabled) {
  std::vector<RobotAction> out;
  select_into(config, enabled, out);
  return out;
}

void SsyncRoundRobinScheduler::select_into(const Configuration&,
                                           const std::vector<std::vector<Action>>& enabled,
                                           std::vector<RobotAction>& out) {
  out.clear();
  const int n = static_cast<int>(enabled.size());
  for (int step = 0; step < n; ++step) {
    const int robot = (next_ + step) % n;
    if (!enabled[static_cast<std::size_t>(robot)].empty()) {
      next_ = (robot + 1) % n;
      out.push_back(RobotAction{robot, enabled[static_cast<std::size_t>(robot)].front()});
      return;
    }
  }
  // no robot enabled (terminating instant): leave `out` empty with the
  // rotation cursor untouched
}

}  // namespace lumi
