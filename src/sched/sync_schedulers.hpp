// Schedulers for the synchronous models.
//
// A scheduler picks, at every instant, which enabled robots execute a full
// cycle and which of their enabled behaviors each executes (the paper leaves
// both choices to the scheduler / adversary).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "src/core/rng.hpp"
#include "src/engine/sync_engine.hpp"

namespace lumi {

class SyncScheduler {
 public:
  virtual ~SyncScheduler() = default;
  /// `enabled[i]` holds robot i's distinct enabled behaviors (empty when
  /// disabled).  Must return a nonempty selection of (robot, action) pairs
  /// with actions drawn from the corresponding `enabled` entries.  When no
  /// robot is enabled, must return an empty selection without consuming any
  /// randomness or mutating fairness state: the engines detect termination
  /// from the empty selection (they no longer pre-scan `enabled` every
  /// instant — that scan was a measurable share of a micro-run), so every
  /// scheduler sees exactly one call with an all-disabled table, at the
  /// terminating instant.
  virtual std::vector<RobotAction> select(
      const Configuration& config, const std::vector<std::vector<Action>>& enabled) = 0;
  /// Allocation-reusing variant of select(): replaces the contents of `out`
  /// with this instant's selection.  The engines call this in their instant
  /// loop with one hoisted buffer, so per-instant selections stop costing a
  /// heap round-trip; the default forwards to select(), and overriders must
  /// make the two spellings draw identically.
  virtual void select_into(const Configuration& config,
                           const std::vector<std::vector<Action>>& enabled,
                           std::vector<RobotAction>& out) {
    out = select(config, enabled);
  }
  virtual std::string name() const = 0;
};

/// FSYNC: every enabled robot acts every instant.  Among multiple enabled
/// behaviors of one robot the first (or a seeded-random one) is taken.
class FsyncScheduler final : public SyncScheduler {
 public:
  explicit FsyncScheduler(unsigned seed = 0, bool randomize_choice = false);
  std::vector<RobotAction> select(const Configuration&,
                                  const std::vector<std::vector<Action>>&) override;
  void select_into(const Configuration&, const std::vector<std::vector<Action>>&,
                   std::vector<RobotAction>& out) override;
  std::string name() const override { return "fsync"; }

 private:
  /// Seeded only when randomize_choice: engine construction writes ~2500
  /// words — a measurable share of a whole micro-run — and the default
  /// first-behavior FSYNC adversary never draws from it.
  std::optional<rng::Engine> rng_;
  bool randomize_choice_;
};

/// SSYNC: a uniformly random nonempty subset of the enabled robots acts; a
/// random enabled behavior is chosen for each.  Fair with probability 1.
class SsyncRandomScheduler final : public SyncScheduler {
 public:
  explicit SsyncRandomScheduler(unsigned seed);
  std::vector<RobotAction> select(const Configuration&,
                                  const std::vector<std::vector<Action>>&) override;
  void select_into(const Configuration&, const std::vector<std::vector<Action>>&,
                   std::vector<RobotAction>& out) override;
  std::string name() const override { return "ssync-random"; }

 private:
  rng::Engine rng_;
  std::vector<int> candidates_;  ///< per-instant scratch, reused across calls
};

/// SSYNC: activates exactly one enabled robot per instant, rotating through
/// robot indices (a maximally sequential fair scheduler).
class SsyncRoundRobinScheduler final : public SyncScheduler {
 public:
  SsyncRoundRobinScheduler() = default;
  std::vector<RobotAction> select(const Configuration&,
                                  const std::vector<std::vector<Action>>&) override;
  void select_into(const Configuration&, const std::vector<std::vector<Action>>&,
                   std::vector<RobotAction>& out) override;
  std::string name() const override { return "ssync-round-robin"; }

 private:
  int next_ = 0;
};

}  // namespace lumi
