// Schedulers for the synchronous models.
//
// A scheduler picks, at every instant, which enabled robots execute a full
// cycle and which of their enabled behaviors each executes (the paper leaves
// both choices to the scheduler / adversary).
#pragma once

#include <memory>
#include <random>
#include <vector>

#include "src/engine/sync_engine.hpp"

namespace lumi {

class SyncScheduler {
 public:
  virtual ~SyncScheduler() = default;
  /// `enabled[i]` holds robot i's distinct enabled behaviors (empty when
  /// disabled).  Must return a nonempty selection of (robot, action) pairs
  /// with actions drawn from the corresponding `enabled` entries.  Called
  /// only when at least one robot is enabled.
  virtual std::vector<RobotAction> select(
      const Configuration& config, const std::vector<std::vector<Action>>& enabled) = 0;
  virtual std::string name() const = 0;
};

/// FSYNC: every enabled robot acts every instant.  Among multiple enabled
/// behaviors of one robot the first (or a seeded-random one) is taken.
class FsyncScheduler final : public SyncScheduler {
 public:
  explicit FsyncScheduler(unsigned seed = 0, bool randomize_choice = false);
  std::vector<RobotAction> select(const Configuration&,
                                  const std::vector<std::vector<Action>>&) override;
  std::string name() const override { return "fsync"; }

 private:
  std::mt19937 rng_;
  bool randomize_choice_;
};

/// SSYNC: a uniformly random nonempty subset of the enabled robots acts; a
/// random enabled behavior is chosen for each.  Fair with probability 1.
class SsyncRandomScheduler final : public SyncScheduler {
 public:
  explicit SsyncRandomScheduler(unsigned seed);
  std::vector<RobotAction> select(const Configuration&,
                                  const std::vector<std::vector<Action>>&) override;
  std::string name() const override { return "ssync-random"; }

 private:
  std::mt19937 rng_;
};

/// SSYNC: activates exactly one enabled robot per instant, rotating through
/// robot indices (a maximally sequential fair scheduler).
class SsyncRoundRobinScheduler final : public SyncScheduler {
 public:
  SsyncRoundRobinScheduler() = default;
  std::vector<RobotAction> select(const Configuration&,
                                  const std::vector<std::vector<Action>>&) override;
  std::string name() const override { return "ssync-round-robin"; }

 private:
  int next_ = 0;
};

}  // namespace lumi
