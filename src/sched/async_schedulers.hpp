// Schedulers for the ASYNC model: they choose which robot's next phase event
// fires and resolve multi-behavior Look choices.
#pragma once

#include <string>
#include <vector>

#include "src/core/rng.hpp"
#include "src/engine/async_engine.hpp"

namespace lumi {

class AsyncScheduler {
 public:
  virtual ~AsyncScheduler() = default;
  /// Picks one of `effective` (never empty) to activate next.
  virtual int pick_robot(const AsyncEngine& engine, const std::vector<int>& effective) = 0;
  /// Resolves a Look with several distinct behaviors.
  virtual Action pick_action(const AsyncEngine& engine, int robot,
                             const std::vector<Action>& choices) = 0;
  virtual std::string name() const = 0;
};

/// Uniformly random event interleaving (fair with probability 1).
class AsyncRandomScheduler final : public AsyncScheduler {
 public:
  explicit AsyncRandomScheduler(unsigned seed);
  int pick_robot(const AsyncEngine&, const std::vector<int>&) override;
  Action pick_action(const AsyncEngine&, int, const std::vector<Action>&) override;
  std::string name() const override { return "async-random"; }

 private:
  rng::Engine rng_;
};

/// Centralized: runs each started cycle to completion before any other robot
/// moves — the most sequential ASYNC schedule (equivalent to a singleton
/// SSYNC schedule).
class AsyncCentralizedScheduler final : public AsyncScheduler {
 public:
  AsyncCentralizedScheduler() = default;
  int pick_robot(const AsyncEngine&, const std::vector<int>&) override;
  Action pick_action(const AsyncEngine&, int, const std::vector<Action>&) override;
  std::string name() const override { return "async-centralized"; }

 private:
  int next_ = 0;
};

/// Stale-view stressor: lets as many robots as possible take snapshots before
/// any of them finishes, maximizing outdated-view and intermediate-color
/// situations.  Randomized tie-breaking, seeded.
class AsyncStaleStressScheduler final : public AsyncScheduler {
 public:
  explicit AsyncStaleStressScheduler(unsigned seed);
  int pick_robot(const AsyncEngine&, const std::vector<int>&) override;
  Action pick_action(const AsyncEngine&, int, const std::vector<Action>&) override;
  std::string name() const override { return "async-stale-stress"; }

 private:
  rng::Engine rng_;
};

}  // namespace lumi
